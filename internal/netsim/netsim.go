// Package netsim provides the message-passing substrate of the
// reproduction: an in-memory network connecting sites, in two flavours —
// a deterministic single-threaded simulator (Sim) used by tests and
// benchmarks, and a concurrent channel-based network (AsyncNetwork) used
// by the runnable examples.
//
// The paper's robustness claims (§1, §5) are about message loss and
// duplication, so the substrate injects faults: per-message drop and
// duplication probabilities, static partitions, and (in Sim) arbitrary
// reordering. Delivery statistics are recorded per payload kind, because
// message complexity is the paper's headline comparison metric (§4).
package netsim

import (
	"fmt"
	"sort"
	"sync"

	"causalgc/internal/ids"
)

// Payload is implemented by every wire message exchanged between sites.
type Payload interface {
	// Kind names the message type for statistics ("ref", "destroy", "ggd",
	// "trace.mark", ...).
	Kind() string
	// ApproxSize estimates the encoded size in bytes, so benches can
	// report traffic volume as well as message counts.
	ApproxSize() int
}

// Application is implemented by payloads that model reliable application
// traffic (mutator RPC). Fault injection skips them: the paper's
// robustness claims (§1, §5) concern the GGD control plane — lazy
// log-keeping piggybacks on the mutator's own messages, whose delivery the
// application already guarantees.
type Application interface {
	// ApplicationTraffic reports that the payload is mutator traffic.
	ApplicationTraffic() bool
}

// FaultEligible reports whether fault injection applies to p: control
// payloads are eligible; application payloads are not.
func FaultEligible(p Payload) bool {
	a, ok := p.(Application)
	return !ok || !a.ApplicationTraffic()
}

// Handler consumes a delivered payload. Handlers run on the network's
// delivery context: single-threaded in Sim, one goroutine per site in
// AsyncNetwork. A handler may send further messages.
type Handler func(from ids.SiteID, p Payload)

// Network abstracts the message substrate so the site runtime is agnostic
// to it. Three implementations exist: the deterministic single-threaded
// Sim and the concurrent in-memory AsyncNetwork in this package, and the
// real-socket tcp.Network in the public transport/tcp package. The public
// transport package re-exports this interface as transport.Transport;
// user-provided substrates implement it there.
type Network interface {
	// Register installs the handler for a site. It must be called before
	// any message is sent to that site.
	Register(site ids.SiteID, h Handler)
	// Send queues a payload for delivery. Delivery is asynchronous and,
	// depending on the substrate and fault plan, may never happen.
	Send(from, to ids.SiteID, p Payload)
	// Stats returns the shared delivery statistics.
	Stats() *Stats
}

// Faults configures fault injection.
type Faults struct {
	// Seed drives the fault and scheduling randomness; a given seed yields
	// a reproducible run in Sim.
	Seed int64
	// DropProb is the probability that a sent message is silently lost.
	DropProb float64
	// DropKindProb drops messages of a specific payload kind with the
	// given probability, on top of DropProb. Used by fault-injection
	// lanes that target one message type (e.g. losing only edge-asserts
	// to exercise the hint-resolution protocol).
	DropKindProb map[string]float64
	// DupProb is the probability that a sent message is delivered twice.
	DupProb float64
	// Reorder, in Sim, delivers messages of a channel in random order
	// instead of FIFO.
	Reorder bool
	// Partitioned, when non-nil, blocks messages for which it returns
	// true. Blocked messages count as dropped.
	Partitioned func(from, to ids.SiteID) bool
}

// Stats records message traffic. Safe for concurrent use.
type Stats struct {
	mu    sync.Mutex
	kinds map[string]*kindCounters
}

type kindCounters struct {
	sent, delivered, dropped, duplicated, bytes int
}

// NewStats returns empty statistics.
func NewStats() *Stats {
	return &Stats{kinds: make(map[string]*kindCounters)}
}

func (s *Stats) counters(kind string) *kindCounters {
	k, ok := s.kinds[kind]
	if !ok {
		k = &kindCounters{}
		s.kinds[kind] = k
	}
	return k
}

// RecordSent counts one send of p (kind and approximate bytes).
// Exported so out-of-package substrates (transport/tcp) can record into
// the shared statistics.
func (s *Stats) RecordSent(p Payload) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.counters(p.Kind())
	k.sent++
	k.bytes += p.ApproxSize()
}

// RecordDelivered counts one delivery of p.
func (s *Stats) RecordDelivered(p Payload) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters(p.Kind()).delivered++
}

// RecordDropped counts one loss of p (fault injection, partition,
// unreachable or closed destination).
func (s *Stats) RecordDropped(p Payload) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters(p.Kind()).dropped++
}

// RecordDuplicated counts one duplicated delivery of p.
func (s *Stats) RecordDuplicated(p Payload) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters(p.Kind()).duplicated++
}

// KindStats is a copy of the counters for one payload kind, as returned
// by Snapshot.
type KindStats struct {
	// Sent counts sends of the kind.
	Sent int
	// Delivered counts deliveries of the kind.
	Delivered int
	// Dropped counts losses of the kind (fault injection, partition,
	// unreachable or closed destination).
	Dropped int
	// Duplicated counts duplicated deliveries of the kind.
	Duplicated int
	// Bytes sums the approximate encoded sizes of sends of the kind.
	Bytes int
}

// Snapshot returns a copy of the counters of every payload kind seen so
// far, keyed by kind.
func (s *Stats) Snapshot() map[string]KindStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]KindStats, len(s.kinds))
	for kind, k := range s.kinds {
		out[kind] = KindStats{
			Sent:       k.sent,
			Delivered:  k.delivered,
			Dropped:    k.dropped,
			Duplicated: k.duplicated,
			Bytes:      k.bytes,
		}
	}
	return out
}

// Kind returns a copy of the counters for one payload kind.
func (s *Stats) Kind(kind string) (sent, delivered, dropped, duplicated, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.kinds[kind]
	if !ok {
		return 0, 0, 0, 0, 0
	}
	return k.sent, k.delivered, k.dropped, k.duplicated, k.bytes
}

// Sent returns the number of sends for one kind.
func (s *Stats) Sent(kind string) int {
	sent, _, _, _, _ := s.Kind(kind)
	return sent
}

// Delivered returns the number of deliveries for one kind.
func (s *Stats) Delivered(kind string) int {
	_, delivered, _, _, _ := s.Kind(kind)
	return delivered
}

// TotalSent sums sends over all kinds.
func (s *Stats) TotalSent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range s.kinds {
		n += k.sent
	}
	return n
}

// TotalBytes sums payload bytes over all kinds.
func (s *Stats) TotalBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range s.kinds {
		n += k.bytes
	}
	return n
}

// Reset clears all counters.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kinds = make(map[string]*kindCounters)
}

// String renders the statistics deterministically (sorted by kind).
func (s *Stats) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds := make([]string, 0, len(s.kinds))
	for k := range s.kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := ""
	for _, kind := range kinds {
		k := s.kinds[kind]
		out += fmt.Sprintf("%-12s sent=%-6d delivered=%-6d dropped=%-4d dup=%-4d bytes=%d\n",
			kind, k.sent, k.delivered, k.dropped, k.duplicated, k.bytes)
	}
	return out
}
