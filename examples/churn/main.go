// churn runs a large randomised workload across sites with injected
// message loss, checks the safety invariant against the global oracle,
// and demonstrates residual-garbage recovery by refresh rounds (§5).
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

func main() {
	w := sim.NewWorld(8, netsim.Faults{Seed: 7, DropProb: 0.2, Reorder: true}, site.DefaultOptions())
	stats, err := mutator.Churn(w, mutator.ChurnConfig{Seed: 99, Ops: 1000, StepsBetweenOps: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Settle(); err != nil {
		log.Fatal(err)
	}
	rep := w.Check()
	fmt.Printf("workload: %+v\n", stats)
	fmt.Printf("after lossy run:  %v  (safety holds: %v)\n", rep, rep.Safe())

	// Heal the network and run recovery refresh rounds.
	w.Net().SetDropProb(0)
	for i := 0; i < 4; i++ {
		if err := w.RefreshAll(); err != nil {
			log.Fatal(err)
		}
		if err := w.Settle(); err != nil {
			log.Fatal(err)
		}
	}
	rep = w.Check()
	fmt.Printf("after recovery:   %v  (safety holds: %v)\n", rep, rep.Safe())
	fmt.Printf("\ntraffic:\n%s", w.Net().Stats())
}
