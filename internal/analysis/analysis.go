package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker: a name (the flag that
// selects it in causalgc-vet), a one-line doc string, and a Run
// function invoked once per analyzed package unit.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// NonTestOnly restricts the pass to non-_test.go files. The
	// type-check unit still includes test files so type information is
	// complete; only Pass.Files is filtered.
	NonTestOnly bool
	// Run reports diagnostics for one package unit through pass.Report.
	Run func(pass *Pass) error
}

// A Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	// Pos is the resolved file:line:col of the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the diagnostic in the conventional
// file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package unit.
type Pass struct {
	// Fset maps token.Pos values in Files to source positions.
	Fset *token.FileSet
	// Files are the syntax trees the analyzer inspects (already
	// filtered when the analyzer is NonTestOnly).
	Files []*ast.File
	// PkgName is the package's declared name.
	PkgName string
	// PkgPath is the package's import path. Testdata packages loaded
	// outside a module use their directory base name.
	PkgPath string
	// Types is the type-checked package, or nil when type-checking
	// failed outright; analyzers must tolerate nil.
	Types *types.Package
	// TypesInfo holds use/def/type resolution for the unit. Non-nil,
	// but sparsely populated when the unit had type errors.
	TypesInfo *types.Info

	analyzer   *Analyzer
	report     func(Diagnostic)
	directives map[string]map[int]map[string]bool // file -> line -> directive
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether the site at pos is covered by a
// //causalgc:allow-<name> directive: either an end-of-line comment on
// the same line, or a full-line comment on the line immediately above.
// Directives mark audited exceptions; every use should carry a
// justification after the directive word.
func (p *Pass) Allowed(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.directives = map[string]map[int]map[string]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					word := strings.TrimPrefix(text, directivePrefix)
					if i := strings.IndexAny(word, " \t"); i >= 0 {
						word = word[:i]
					}
					cp := p.Fset.Position(c.Pos())
					lines := p.directives[cp.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						p.directives[cp.Filename] = lines
					}
					// The directive covers its own line (end-of-line
					// form) and the next line (comment-above form).
					for _, ln := range []int{cp.Line, cp.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = map[string]bool{}
						}
						lines[ln][word] = true
					}
				}
			}
		}
	}
	dp := p.Fset.Position(pos)
	return p.directives[dp.Filename][dp.Line][name]
}

// directivePrefix starts every audited-exception comment:
// //causalgc:allow-wallclock, //causalgc:allow-locked-call, ...
const directivePrefix = "causalgc:allow-"

// Run applies each analyzer to each loaded package unit and returns
// the combined diagnostics sorted by position.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, u := range units {
		for _, a := range analyzers {
			files := u.Files
			if a.NonTestOnly {
				files = nil
				for _, f := range u.Files {
					if !strings.HasSuffix(u.Filename(f), "_test.go") {
						files = append(files, f)
					}
				}
			}
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Fset:      u.Fset,
				Files:     files,
				PkgName:   u.Name,
				PkgPath:   u.Path,
				Types:     u.Types,
				TypesInfo: u.Info,
				analyzer:  a,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", u.Path, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
