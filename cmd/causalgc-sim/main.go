// causalgc-sim runs causalgc scenarios from the command line and prints
// oracle verdicts and message statistics.
//
// Usage:
//
//	causalgc-sim -scenario paper                 # Fig 3/8 cycle
//	causalgc-sim -scenario ring  -k 16           # k-element distributed ring
//	causalgc-sim -scenario dll   -k 16           # doubly-linked list (§4)
//	causalgc-sim -scenario churn -ops 1000 -sites 8 -drop 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"causalgc/internal/mutator"
	"causalgc/internal/netsim"
	"causalgc/internal/sim"
	"causalgc/internal/site"
)

func main() {
	scenario := flag.String("scenario", "paper", "paper | ring | dll | churn")
	k := flag.Int("k", 8, "structure size for ring/dll")
	ops := flag.Int("ops", 500, "operations for churn")
	sites := flag.Int("sites", 6, "sites for churn")
	seed := flag.Int64("seed", 1, "deterministic seed")
	drop := flag.Float64("drop", 0, "GGD control-message drop probability")
	flag.Parse()
	if err := run(*scenario, *k, *ops, *sites, *seed, *drop); err != nil {
		fmt.Fprintln(os.Stderr, "causalgc-sim:", err)
		os.Exit(1)
	}
}

func run(scenario string, k, ops, sites int, seed int64, drop float64) error {
	faults := netsim.Faults{Seed: seed, DropProb: drop, Reorder: drop > 0}
	switch scenario {
	case "paper":
		w := sim.NewWorld(4, faults, site.DefaultOptions())
		sc, err := mutator.BuildPaperScenario(w)
		if err != nil {
			return err
		}
		if err := sc.DropRootEdge(); err != nil {
			return err
		}
		return report(w)
	case "ring":
		w := sim.NewWorld(k+1, faults, site.DefaultOptions())
		ring, err := mutator.BuildRing(w, k)
		if err != nil {
			return err
		}
		if err := ring.DetachRing(); err != nil {
			return err
		}
		return report(w)
	case "dll":
		w := sim.NewWorld(k+1, faults, site.DefaultOptions())
		dll, err := mutator.BuildDLL(w, k)
		if err != nil {
			return err
		}
		if err := dll.Detach(); err != nil {
			return err
		}
		return report(w)
	case "churn":
		w := sim.NewWorld(sites, faults, site.DefaultOptions())
		stats, err := mutator.Churn(w, mutator.ChurnConfig{Seed: seed * 7, Ops: ops, StepsBetweenOps: 3})
		if err != nil {
			return err
		}
		fmt.Printf("workload: %+v\n", stats)
		return report(w)
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
}

func report(w *sim.World) error {
	if err := w.Settle(); err != nil {
		return err
	}
	rep := w.Check()
	fmt.Printf("oracle: %v (safe=%v clean=%v), %d objects remain\n",
		rep, rep.Safe(), rep.Clean(), w.TotalObjects())
	fmt.Printf("traffic:\n%s", w.Net().Stats())
	if !rep.Safe() {
		return fmt.Errorf("SAFETY VIOLATION")
	}
	return nil
}
