package monitor

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteExposition renders snapshots in the Prometheus text exposition
// format (version 0.0.4), one site-labelled sample per snapshot per
// metric. Metrics whose source surface is absent from every snapshot
// (persist counters on volatile nodes, the residual gauge before the
// oracle reports) are omitted entirely. See the package documentation
// for the metrics reference.
func WriteExposition(w io.Writer, snaps ...Snapshot) error {
	p := &promWriter{w: w}

	p.gauge("causalgc_uptime_seconds", "Seconds since the monitor attached to the node.",
		snaps, func(s *Snapshot) float64 { return s.UptimeSeconds })
	p.igauge("causalgc_objects", "Live heap objects, root object included.",
		snaps, func(s *Snapshot) int { return s.Objects })

	p.counter("causalgc_clusters_removed_total", "Clusters detected as global garbage and removed.",
		snaps, func(s *Snapshot) int { return s.Engine.Removed })
	p.counter("causalgc_evaluations_total", "GGD closure computations.",
		snaps, func(s *Snapshot) int { return s.Engine.Evaluations })
	p.counter("causalgc_propagations_sent_total", "Dependency vectors sent.",
		snaps, func(s *Snapshot) int { return s.Engine.PropagationsSent })
	p.counter("causalgc_destroys_sent_total", "Edge-destruction messages sent, re-sends included.",
		snaps, func(s *Snapshot) int { return s.Engine.DestroysSent })
	p.counter("causalgc_asserts_sent_total", "Edge-assert messages sent, negative asserts included.",
		snaps, func(s *Snapshot) int { return s.Engine.AssertsSent })
	p.head("causalgc_resends_total", "counter", "Refresh re-sends by retained-state stream.")
	for i := range snaps {
		s := &snaps[i]
		p.sample("causalgc_resends_total", s, `stream="assert"`, float64(s.Engine.AssertResends))
		p.sample("causalgc_resends_total", s, `stream="destroy"`, float64(s.Engine.DestroyResends))
		p.sample("causalgc_resends_total", s, `stream="legacy"`, float64(s.Engine.LegacyResends))
		p.sample("causalgc_resends_total", s, `stream="outbox"`, float64(s.Frames.OutboxResends))
	}
	p.head("causalgc_resends_suppressed_total", "counter", "Re-sends the exponential damper held back.")
	for i := range snaps {
		s := &snaps[i]
		p.sample("causalgc_resends_suppressed_total", s, `layer="engine"`, float64(s.Engine.ResendsSuppressed))
		p.sample("causalgc_resends_suppressed_total", s, `layer="outbox"`, float64(s.Frames.ResendsSuppressed))
	}
	p.counter("causalgc_rows_retired_total", "Engine rows retired by cumulative frame acknowledgements.",
		snaps, func(s *Snapshot) int { return s.Engine.RowsRetired })
	p.head("causalgc_backstop_drops_total", "counter", "Retained state dropped at a hard cap: tolerated loss.")
	for i := range snaps {
		s := &snaps[i]
		p.sample("causalgc_backstop_drops_total", s, `table="assert_journal"`, float64(s.Engine.AssertRowsDropped))
		p.sample("causalgc_backstop_drops_total", s, `table="legacy"`, float64(s.Engine.LegacyEvicted))
		p.sample("causalgc_backstop_drops_total", s, `table="outbox"`, float64(s.Frames.OutboxEvicted))
	}
	p.counter("causalgc_hints_expired_total", "Introduction hints expired as provably stale.",
		snaps, func(s *Snapshot) int { return s.Engine.HintsExpired })
	p.counter("causalgc_stale_deliveries_total", "Messages addressed to removed or unknown processes.",
		snaps, func(s *Snapshot) int { return s.Engine.StaleDeliveries })

	p.counter("causalgc_acks_sent_total", "Cumulative FrameAcks sent.",
		snaps, func(s *Snapshot) int { return s.Frames.AcksSent })
	p.counter("causalgc_acks_received_total", "Cumulative FrameAcks received.",
		snaps, func(s *Snapshot) int { return s.Frames.AcksReceived })
	p.counter("causalgc_frames_retired_total", "Outbox frames retired by cumulative acknowledgements.",
		snaps, func(s *Snapshot) int { return s.Frames.FramesRetired })
	p.counter("causalgc_advances_sent_total", "StreamAdvance floor advisories sent.",
		snaps, func(s *Snapshot) int { return s.Frames.AdvancesSent })

	p.igauge("causalgc_outbox_depth", "Unacknowledged outbound mutator frames retained.",
		snaps, func(s *Snapshot) int { return s.Depths.Outbox })
	p.igauge("causalgc_assert_journal_depth", "Un-acknowledged edge-asserts journaled for re-send.",
		snaps, func(s *Snapshot) int { return s.Depths.AssertRows })
	p.igauge("causalgc_destroy_bundles_depth", "Destroyed-edge bundles tracked against re-formation.",
		snaps, func(s *Snapshot) int { return s.Depths.DestroyRows })
	p.igauge("causalgc_legacy_bundles_depth", "Finalisation bundles of removed clusters retained.",
		snaps, func(s *Snapshot) int { return s.Depths.LegacyBundles })
	p.igauge("causalgc_pending_refs_depth", "Reference transfers buffered awaiting their holder.",
		snaps, func(s *Snapshot) int { return s.Depths.PendingRefs })
	p.igauge("causalgc_pending_deliveries_depth", "Control messages buffered ahead of registration.",
		snaps, func(s *Snapshot) int { return s.Depths.PendingDeliveries })

	if anyShards(snaps) {
		p.head("causalgc_shards", "gauge", "Lock-stripe width of the sharded site.")
		for i := range snaps {
			if s := &snaps[i]; s.Shards > 0 {
				p.sample("causalgc_shards", s, "", float64(s.Shards))
			}
		}
		p.head("causalgc_handoff_depth", "gauge", "Cross-shard frames queued in the ordered handoff.")
		for i := range snaps {
			if s := &snaps[i]; s.Shards > 0 {
				p.sample("causalgc_handoff_depth", s, "", float64(s.Handoff))
			}
		}
		p.head("causalgc_shard_outbox_depth", "gauge", "Per-shard unacknowledged outbound mutator frames.")
		p.shardDepth(snaps, "causalgc_shard_outbox_depth", func(d siteDepthsView) int { return d.Outbox })
		p.head("causalgc_shard_assert_journal_depth", "gauge", "Per-shard un-acknowledged edge-assert journal size.")
		p.shardDepth(snaps, "causalgc_shard_assert_journal_depth", func(d siteDepthsView) int { return d.AssertRows })
		p.head("causalgc_shard_pending_refs_depth", "gauge", "Per-shard buffered reference transfers.")
		p.shardDepth(snaps, "causalgc_shard_pending_refs_depth", func(d siteDepthsView) int { return d.PendingRefs })
	}

	p.counter("causalgc_collections_total", "Local mark-sweep collections observed.",
		snaps, func(s *Snapshot) int { return s.Collect.Collections })
	p.counter("causalgc_collect_marked_total", "Objects found reachable, summed over collections.",
		snaps, func(s *Snapshot) int { return s.Collect.Marked })
	p.counter("causalgc_collect_swept_total", "Objects reclaimed, summed over collections.",
		snaps, func(s *Snapshot) int { return s.Collect.Swept })

	if anyPersist(snaps) {
		p.head("causalgc_wal_appends_total", "counter", "WAL records appended this session.")
		p.persist(snaps, "causalgc_wal_appends_total", func(s *Snapshot) float64 { return float64(s.Persist.Appends) })
		p.head("causalgc_wal_syncs_total", "counter", "WAL fsyncs this session.")
		p.persist(snaps, "causalgc_wal_syncs_total", func(s *Snapshot) float64 { return float64(s.Persist.Syncs) })
		p.head("causalgc_wal_fsync_seconds_total", "counter", "Total wall-clock seconds spent in WAL fsyncs.")
		p.persist(snaps, "causalgc_wal_fsync_seconds_total", func(s *Snapshot) float64 { return float64(s.Persist.SyncNanos) / 1e9 })
		p.head("causalgc_wal_fsync_max_seconds", "gauge", "Slowest single WAL fsync of the session.")
		p.persist(snaps, "causalgc_wal_fsync_max_seconds", func(s *Snapshot) float64 { return float64(s.Persist.SyncMaxNanos) / 1e9 })
		p.head("causalgc_wal_snapshots_total", "counter", "Durable snapshots written this session.")
		p.persist(snaps, "causalgc_wal_snapshots_total", func(s *Snapshot) float64 { return float64(s.Persist.Snapshots) })
		p.head("causalgc_wal_recovered_records", "gauge", "WAL records recovered at open.")
		p.persist(snaps, "causalgc_wal_recovered_records", func(s *Snapshot) float64 { return float64(s.Persist.RecoveredRecords) })
		p.head("causalgc_wal_discarded_tail_bytes", "gauge", "Torn tail bytes discarded at open.")
		p.persist(snaps, "causalgc_wal_discarded_tail_bytes", func(s *Snapshot) float64 { return float64(s.Persist.DiscardedTailBytes) })
	}

	if anyTransport(snaps) {
		p.net(snaps, "causalgc_net_sent_total", "Transport sends by payload kind.",
			func(k kindView) int { return k.Sent })
		p.net(snaps, "causalgc_net_delivered_total", "Transport deliveries by payload kind.",
			func(k kindView) int { return k.Delivered })
		p.net(snaps, "causalgc_net_dropped_total", "Transport losses by payload kind.",
			func(k kindView) int { return k.Dropped })
		p.net(snaps, "causalgc_net_duplicated_total", "Transport duplicated deliveries by payload kind.",
			func(k kindView) int { return k.Duplicated })
		p.net(snaps, "causalgc_net_bytes_total", "Approximate transport payload bytes by kind.",
			func(k kindView) int { return k.Bytes })
	}

	if anyResidual(snaps) {
		p.head("causalgc_residual_garbage", "gauge", "Oracle-measured unreclaimed garbage objects (test deployments).")
		for i := range snaps {
			if s := &snaps[i]; s.Residual != nil {
				p.sample("causalgc_residual_garbage", s, "", float64(*s.Residual))
			}
		}
	}

	p.counter("causalgc_trace_recorded_total", "Structured trace events recorded.",
		snaps, func(s *Snapshot) int { return int(s.Trace.Recorded) })
	p.counter("causalgc_trace_dropped_total", "Trace events overwritten off the bounded ring.",
		snaps, func(s *Snapshot) int { return int(s.Trace.Dropped) })

	return p.err
}

// kindView is the per-kind transport counters as seen by the exposition
// writer (a copy of netsim.KindStats without the import in signatures).
type kindView struct {
	Sent, Delivered, Dropped, Duplicated, Bytes int
}

// promWriter accumulates the first write error so WriteExposition reads
// linearly.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// head writes the HELP and TYPE lines of one metric (exactly once per
// exposition, as the format requires).
func (p *promWriter) head(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one site-labelled sample line, merging extra labels.
func (p *promWriter) sample(name string, s *Snapshot, labels string, v float64) {
	site := `site="` + s.Site.String() + `"`
	if labels != "" {
		site += "," + labels
	}
	p.printf("%s{%s} %s\n", name, site, strconv.FormatFloat(v, 'g', -1, 64))
}

// counter writes one int-valued counter across all snapshots.
func (p *promWriter) counter(name, help string, snaps []Snapshot, get func(*Snapshot) int) {
	p.head(name, "counter", help)
	for i := range snaps {
		p.sample(name, &snaps[i], "", float64(get(&snaps[i])))
	}
}

// igauge writes one int-valued gauge across all snapshots.
func (p *promWriter) igauge(name, help string, snaps []Snapshot, get func(*Snapshot) int) {
	p.head(name, "gauge", help)
	for i := range snaps {
		p.sample(name, &snaps[i], "", float64(get(&snaps[i])))
	}
}

// gauge writes one float-valued gauge across all snapshots.
func (p *promWriter) gauge(name, help string, snaps []Snapshot, get func(*Snapshot) float64) {
	p.head(name, "gauge", help)
	for i := range snaps {
		p.sample(name, &snaps[i], "", get(&snaps[i]))
	}
}

// persist writes one persist-sourced sample per snapshot that has a
// store.
func (p *promWriter) persist(snaps []Snapshot, name string, get func(*Snapshot) float64) {
	for i := range snaps {
		if s := &snaps[i]; s.Persist != nil {
			p.sample(name, s, "", get(s))
		}
	}
}

// net writes one transport counter across all snapshots, kind-labelled
// and deterministically ordered.
func (p *promWriter) net(snaps []Snapshot, name, help string, get func(kindView) int) {
	p.head(name, "counter", help)
	for i := range snaps {
		s := &snaps[i]
		kinds := make([]string, 0, len(s.Transport))
		for k := range s.Transport {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			ks := s.Transport[k]
			p.sample(name, s, `kind="`+k+`"`, float64(get(kindView{
				Sent: ks.Sent, Delivered: ks.Delivered, Dropped: ks.Dropped,
				Duplicated: ks.Duplicated, Bytes: ks.Bytes,
			})))
		}
	}
}

// siteDepthsView mirrors site.Depths for the exposition writer's
// signatures, like kindView does for netsim.KindStats.
type siteDepthsView struct {
	Outbox, AssertRows, DestroyRows, LegacyBundles, PendingRefs, PendingDeliveries int
}

// shardDepth writes one shard-labelled depth sample per shard of every
// sharded snapshot.
func (p *promWriter) shardDepth(snaps []Snapshot, name string, get func(siteDepthsView) int) {
	for i := range snaps {
		s := &snaps[i]
		for shard, d := range s.ShardDepths {
			p.sample(name, s, `shard="`+strconv.Itoa(shard)+`"`, float64(get(siteDepthsView{
				Outbox: d.Outbox, AssertRows: d.AssertRows, DestroyRows: d.DestroyRows,
				LegacyBundles: d.LegacyBundles, PendingRefs: d.PendingRefs,
				PendingDeliveries: d.PendingDeliveries,
			})))
		}
	}
}

func anyShards(snaps []Snapshot) bool {
	for i := range snaps {
		if snaps[i].Shards > 0 {
			return true
		}
	}
	return false
}

func anyPersist(snaps []Snapshot) bool {
	for i := range snaps {
		if snaps[i].Persist != nil {
			return true
		}
	}
	return false
}

func anyTransport(snaps []Snapshot) bool {
	for i := range snaps {
		if snaps[i].Transport != nil {
			return true
		}
	}
	return false
}

func anyResidual(snaps []Snapshot) bool {
	for i := range snaps {
		if snaps[i].Residual != nil {
			return true
		}
	}
	return false
}
