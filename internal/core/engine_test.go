package core

import (
	"testing"

	"causalgc/internal/ids"
	"causalgc/internal/vclock"
)

// fakeSender records outgoing control messages.
type fakeSender struct {
	destroys []sentMsg
	props    []sentMsg
	asserts  []sentAssert
}

type sentMsg struct {
	from, to ids.ClusterID
}

type sentAssert struct {
	from, to ids.ClusterID
	m        AssertMsg
}

func (f *fakeSender) SendDestroy(from, to ids.ClusterID, _ DestroyMsg) {
	f.destroys = append(f.destroys, sentMsg{from, to})
}

func (f *fakeSender) SendPropagate(from, to ids.ClusterID, _ Propagation) {
	f.props = append(f.props, sentMsg{from, to})
}

func (f *fakeSender) SendAssert(from, to ids.ClusterID, m AssertMsg) {
	f.asserts = append(f.asserts, sentAssert{from, to, m})
}

var _ Sender = (*fakeSender)(nil)

var (
	r1  = ids.ClusterID{Site: 1, Seq: 1, Root: true}
	cA  = ids.ClusterID{Site: 1, Seq: 2}
	cB  = ids.ClusterID{Site: 1, Seq: 3}
	rem = ids.ClusterID{Site: 2, Seq: 1}
)

func newEngine(t *testing.T, opts Options) (*Engine, *fakeSender, *[]ids.ClusterID) {
	t.Helper()
	fs := &fakeSender{}
	var removed []ids.ClusterID
	e := New(1, fs, func(cl ids.ClusterID) { removed = append(removed, cl) }, opts)
	return e, fs, &removed
}

func TestEngineRegisterIdempotentAndTombstoned(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cA)
	if !e.Registered(cA) {
		t.Fatal("not registered")
	}
	e.Register(cA) // no-op
	if got := len(e.Processes()); got != 1 {
		t.Fatalf("Processes = %d", got)
	}
	// Make it garbage: no edges at all → first delivery removes it.
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{r1: vclock.Eps(1)}})
	if !e.Removed(cA) {
		t.Fatal("unreferenced cluster not removed")
	}
	e.Register(cA)
	if e.Registered(cA) {
		t.Fatal("tombstoned cluster re-registered")
	}
}

func TestEngineRegisterForeignPanics(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Register(rem)
}

func TestEngineLocalEdgeLifecycle(t *testing.T) {
	e, _, removed := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.Drain()
	if e.Removed(cA) {
		t.Fatal("live cluster removed")
	}
	if got := e.Acquaintances(r1); len(got) != 1 || got[0] != cA {
		t.Fatalf("Acquaintances = %v", got)
	}
	// The stamp landed directly in cA's own vector (same site).
	if got := e.LogSnapshot(cA).Own().Get(r1); !got.Live() {
		t.Fatalf("own[r1] = %v, want live", got)
	}
	e.EdgeDown(r1, cA)
	e.Drain()
	if !e.Removed(cA) {
		t.Fatal("dead cluster not removed")
	}
	if len(*removed) != 1 || (*removed)[0] != cA {
		t.Fatalf("onRemove calls = %v", *removed)
	}
	if e.Clock(cA) == 0 {
		t.Error("tombstone clock lost")
	}
}

func TestEngineLocalCascade(t *testing.T) {
	// r1 → A → B: dropping r1→A removes A, whose finalisation removes B.
	e, _, removed := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.Register(cB)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.EdgeUp(cA, cB, true, ids.NoCluster, 0)
	e.Drain()
	e.EdgeDown(r1, cA)
	e.Drain()
	if !e.Removed(cA) || !e.Removed(cB) {
		t.Fatalf("cascade incomplete: removed=%v", *removed)
	}
	st := e.Stats()
	if st.Removed != 2 {
		t.Errorf("Stats.Removed = %d, want 2", st.Removed)
	}
}

func TestEngineRemoteEdgeUpSendsAssert(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	intro := ids.ClusterID{Site: 3, Seq: 9}
	e.EdgeUp(cA, rem, true, intro, 7)
	if len(fs.asserts) != 1 {
		t.Fatalf("asserts = %+v, want 1", fs.asserts)
	}
	a := fs.asserts[0]
	if a.from != cA || a.to != rem || a.m.Intro != intro || a.m.IntroSeq != 7 {
		t.Errorf("assert = %+v", a)
	}
	// Non-first re-add: no assert.
	e.EdgeUp(cA, rem, false, intro, 8)
	if len(fs.asserts) != 1 {
		t.Errorf("re-add sent an assert")
	}
	// Creation sentinel: no assert.
	e.EdgeUp(cA, ids.ClusterID{Site: 2, Seq: 5}, true, ids.NoCluster, ids.CreationSeq)
	if len(fs.asserts) != 1 {
		t.Errorf("creation sent an assert")
	}
}

func TestEngineEdgeDownShipsBundle(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	e.EdgeUp(cA, rem, true, ids.NoCluster, 0)
	seq := e.SentRef(cA, rem, cB) // cA forwards rem's ref to cB
	if seq == 0 {
		t.Fatal("SentRef returned 0")
	}
	ob := e.LogSnapshot(cA).PeekOB(rem)
	if ob == nil || !ob.Hints.Get(cB).Live() {
		t.Fatalf("forward hint not recorded: %+v", ob)
	}
	e.EdgeDown(cA, rem)
	e.Drain()
	if len(fs.destroys) != 1 || fs.destroys[0].to != rem {
		t.Fatalf("destroys = %+v", fs.destroys)
	}
}

func TestEngineHandleAssertResolvesHint(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cA)
	// cA hears (via a bundle) that rem may reference it, introduced by cB
	// at seq 5: pending hint blocks a garbage verdict.
	e.HandleDestroy(cA, cB, DestroyMsg{
		Auth:  vclock.Vector{cB: vclock.Eps(3)},
		Hints: vclock.Vector{rem: vclock.At(5)},
	})
	if e.Removed(cA) {
		t.Fatal("removed with a pending introduction hint (UNSAFE)")
	}
	// rem's assert resolves the hint with a live stamp: still alive.
	e.HandleAssert(cA, rem, AssertMsg{Stamp: 9, Intro: cB, IntroSeq: 5})
	if e.Removed(cA) {
		t.Fatal("removed while rem holds a live edge")
	}
	if got := e.LogSnapshot(cA).Own().Get(rem); got != vclock.At(9) {
		t.Fatalf("own[rem] = %v, want 9", got)
	}
	// rem destroys its edge: now cA is garbage.
	e.HandleDestroy(cA, rem, DestroyMsg{Auth: vclock.Vector{rem: vclock.Eps(10)}})
	if !e.Removed(cA) {
		t.Fatal("not removed after all edges destroyed")
	}
}

func TestEngineConfirmationGuardBlocksRemoval(t *testing.T) {
	e, fs, _ := newEngine(t, Options{})
	e.Register(cA)
	// cA's only edge is from the (unconfirmed) remote cluster: a destroy
	// from a root leaves a live non-root predecessor with unknown
	// ancestry — removal must be blocked; a propagation must go out
	// asking the world (via cA's successors, none here).
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{
		r1:  vclock.Eps(4),
		rem: vclock.At(2), // bundled: edge rem→cA exists
	}})
	if e.Removed(cA) {
		t.Fatal("removed with unconfirmed live predecessor (UNSAFE)")
	}
	// rem's propagation confirms its row: rootless → garbage.
	e.HandlePropagate(cA, rem, Propagation{Clock: 3, Auth: vclock.NewVector()})
	if !e.Removed(cA) {
		t.Fatal("not removed after predecessor confirmed rootless")
	}
	_ = fs
}

func TestEngineConfirmedLiveRootKeepsAlive(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cA)
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{
		r1:  vclock.Eps(4),
		rem: vclock.At(2),
	}})
	// rem's propagation shows rem is itself root-referenced.
	root2 := ids.ClusterID{Site: 2, Seq: 1, Root: true}
	e.HandlePropagate(cA, rem, Propagation{
		Clock: 3,
		Auth:  vclock.Vector{root2: vclock.At(1)},
	})
	if e.Removed(cA) {
		t.Fatal("removed despite a confirmed live root path (UNSAFE)")
	}
}

func TestEngineDuplicateDestroyIdempotent(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Register(cA)
	e.EdgeUp(r1, cA, true, ids.NoCluster, 0)
	e.Drain()
	m := DestroyMsg{Auth: vclock.Vector{rem: vclock.Eps(5)}}
	e.HandleDestroy(cA, rem, m)
	clock := e.Clock(cA)
	e.HandleDestroy(cA, rem, m) // duplicate
	if got := e.Clock(cA); got != clock {
		t.Errorf("duplicate destroy bumped the clock: %d -> %d", clock, got)
	}
}

func TestEngineStaleDeliveriesCounted(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	ghost := ids.ClusterID{Site: 2, Seq: 99}
	// Foreign-site target: never buffered, dropped as stale.
	e.HandleDestroy(ghost, r1, DestroyMsg{})
	if got := e.Stats().StaleDeliveries; got != 1 {
		t.Errorf("StaleDeliveries = %d, want 1", got)
	}
	// EdgeUp/SentRef/EdgeDown on unknown holders are stale too.
	e.EdgeUp(cB, rem, true, ids.NoCluster, 0)
	e.SentRef(cB, rem, cA)
	e.EdgeDown(cB, rem)
	if got := e.Stats().StaleDeliveries; got != 4 {
		t.Errorf("StaleDeliveries = %d, want 4", got)
	}
}

func TestEngineEarlyMessageBuffered(t *testing.T) {
	// A destroy racing ahead of the local cluster's creation must be
	// buffered and replayed on Register, not dropped.
	e, _, _ := newEngine(t, Options{})
	e.HandleDestroy(cA, rem, DestroyMsg{Auth: vclock.Vector{rem: vclock.Eps(5)}})
	if e.Stats().StaleDeliveries != 0 {
		t.Fatal("early local-cluster message dropped instead of buffered")
	}
	e.Register(cA)
	e.HandleCreate(cA, rem, 2) // creation arrives late
	e.Drain()
	// The buffered Ē(5) must supersede the creation stamp At(2).
	if e.Registered(cA) {
		if got := e.LogSnapshot(cA).Own().Get(rem); got != vclock.Eps(5) {
			t.Fatalf("own[rem] = %v, want Ē5", got)
		}
	}
}

func TestEngineRootsNeverRemoved(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(r1)
	e.Refresh()
	e.Evaluate(r1)
	if e.Removed(r1) {
		t.Fatal("actual root removed")
	}
}

func TestEngineSelfRefSendArmsOwnHint(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Register(cA)
	seq := e.SentRef(cA, cA, rem) // cA sends its own reference to rem
	if seq == 0 {
		t.Fatal("seq = 0")
	}
	if !e.LogSnapshot(cA).Hints().Has(rem) {
		t.Fatal("self-introduction hint not armed")
	}
	// rem's assert resolves it.
	e.HandleAssert(cA, rem, AssertMsg{Stamp: 4, Intro: cA, IntroSeq: seq})
	if e.LogSnapshot(cA).Hints().Has(rem) {
		t.Fatal("hint not resolved by assert")
	}
}

func TestEngineUnsafeNoHintsSkipsMechanism(t *testing.T) {
	e, fs, _ := newEngine(t, Options{UnsafeNoHints: true})
	e.Register(cA)
	e.EdgeUp(cA, rem, true, cB, 3)
	if len(fs.asserts) != 0 {
		t.Errorf("asserts sent with UnsafeNoHints: %+v", fs.asserts)
	}
	e.SentRef(cA, cA, rem)
	if e.LogSnapshot(cA).Hints() != nil && !e.LogSnapshot(cA).Hints().Empty() {
		t.Error("hints armed with UnsafeNoHints")
	}
}

func TestEngineRemoveObserver(t *testing.T) {
	var observed []ids.ClusterID
	fs := &fakeSender{}
	e := New(1, fs, nil, Options{
		RemoveObserver: func(id ids.ClusterID, log *vclock.Log, clock uint64) {
			if log == nil {
				t.Error("observer got nil log")
			}
			observed = append(observed, id)
		},
	})
	e.Register(cA)
	e.HandleDestroy(cA, r1, DestroyMsg{Auth: vclock.Vector{r1: vclock.Eps(1)}})
	if len(observed) != 1 || observed[0] != cA {
		t.Fatalf("observed = %v", observed)
	}
}
