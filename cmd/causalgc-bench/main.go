// causalgc-bench regenerates the experiment tables of EXPERIMENTS.md
// (E5–E9, A2) as plain text. Each experiment corresponds to a figure,
// claim or comparison in the paper; see DESIGN.md §4 for the index. The
// experiment logic lives in the causalgc/eval package; `go test -bench=.`
// at the repository root reports the same quantities as benchmarks.
//
// Usage:
//
//	causalgc-bench                              # all experiments
//	causalgc-bench -exp E6                      # one experiment
//	causalgc-bench -batch-json BENCH_batch.json # batch-vs-singleton throughput point
package main

import (
	"flag"
	"os"

	"causalgc/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: E5 E6 E7 E8 E9 A2 or all")
	batchJSON := flag.String("batch-json", "", "measure batched vs singleton commit throughput and write the JSON report to this path ('-' for stdout); skips the experiments")
	flag.Parse()
	if *batchJSON != "" {
		if !eval.BatchBench(os.Stdout, *batchJSON) {
			os.Exit(1)
		}
		return
	}
	if !eval.Run(os.Stdout, *exp) {
		os.Exit(1)
	}
}
