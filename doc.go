// Package causalgc is the public API of the causalgc distributed garbage
// collector: a reproduction-grown implementation of comprehensive Global
// Garbage Detection (GGD) by tracking causal dependencies of relevant
// mutator events (Louboutin & Cahill, ICDCS 1997). It detects and
// reclaims all distributed garbage — cycles spanning any number of sites
// included — without stop-the-world phases or global consensus, and
// tolerates loss, duplication and reordering of its control messages.
//
// # Model
//
// The system is a set of sites, each an independent address space with
// its own heap, local mark-sweep collector and GGD engine. Objects are
// containers of reference slots; references may cross site boundaries.
// Applications drive the mutator API of Node: create objects locally or
// on remote sites, copy held references to other objects (including
// third-party transfers), and drop them. Everything else — lazy
// log-keeping, dependency-vector propagation, garbage detection and
// reclamation — happens underneath.
//
// # Quickstart
//
// A Node is one site; a Cluster assembles several over a shared
// transport. The default Cluster transport is the deterministic
// in-memory simulator, which makes runs reproducible:
//
//	c := causalgc.NewCluster(3)
//	defer c.Close()
//	n1 := c.Node(1)
//	a, _ := n1.NewRemote(n1.Root().Obj, 2) // object on site 2
//	c.Run()                                // deliver messages
//	b, _ := c.Node(2).NewRemote(a.Obj, 3)  // object on site 3
//	c.Run()
//	c.Node(2).SendRef(a.Obj, b, a)         // cycle a ⇄ b across sites
//	c.Run()
//	n1.DropRefs(n1.Root().Obj, a)          // now {a,b} is distributed garbage
//	c.Settle()                             // GGD detects and reclaims it
//
// The same engine runs over real sockets: build each Node in its own
// process with WithTransport(tcp.New(...)) — see transport/tcp and
// cmd/causalgc-node.
//
// # Batched mutations
//
// Write-heavy workloads should group operations with Node.Batch: a
// committed Batch pays one lock acquisition, one write-ahead journal
// append (one fsync, composing with WithGroupCommit) and one coalesced
// wire envelope per destination site for the whole group, instead of
// each cost per operation. Creations return *BatchRef placeholders
// later ops of the same batch can chain onto (deferred reference
// resolution); the singleton mutator methods are one-element batches,
// so semantics are identical either way (DESIGN.md §3.3).
//
// # Reliability and retirement
//
// The GGD control plane tolerates loss, duplication and reordering by
// construction; what a fault costs is latency, never safety. State that
// must survive faults — journaled edge-asserts, edge-destruction
// bundles, finalisation bundles of removed clusters, and (on durable
// nodes) unconfirmed outbound mutator frames — is retained and re-sent
// by Refresh rounds until the receiving site acknowledges it with a
// cumulative FrameAck, at which point it is retired exactly
// (DESIGN.md §3.2). An exponential per-row damper (WithResendBackoff)
// keeps long-lived systems from re-shipping the same rows every round,
// and after quiescence a refresh round re-ships nothing at all. The
// hard caps that bound the retained state are backstops only: when one
// fires, the tolerated loss is counted (Node.FrameStats) and surfaced
// through the optional AckObserver instead of happening silently.
//
// # Structure
//
// Public packages: causalgc (Node, Cluster, workloads, oracle checks),
// causalgc/transport (the Transport interface and in-memory backends),
// causalgc/transport/tcp (the socket backend) and causalgc/eval (the
// experiment harness reproducing the paper's evaluation). The protocol
// internals live under internal/ — see DESIGN.md for the algorithm
// reconstruction, ARCHITECTURE.md for the package/dataflow map and the
// frame lifecycle, and README.md for the quickstart.
package causalgc
