package site

import (
	"fmt"
	"sort"

	"causalgc/internal/heap"
	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/wire"
)

// This file is the site half of the batched mutator API (DESIGN.md
// §3.3). A batch commits a group of staged mutator operations under ONE
// lock acquisition, ONE write-ahead journal append (a single
// wire.BatchRecord — one fsync, or one group-commit window share,
// instead of one per op), and per-destination coalesced wire.Envelope
// frames (one transport send per peer instead of one per frame). The
// journal-before-send invariant holds per batch: the group record is
// durable before any frame the group produced leaves the site, exactly
// as the singleton path guarantees per op. Retirement semantics are
// unchanged — every coalesced mutator frame keeps its own stream
// sequence and outbox row; only the transport framing is grouped.

// ApplyBatch commits a group of mutator operations atomically with
// respect to staging: the whole group is validated against a staged
// view first (deferred references checked structurally, holder
// existence checked against the heap plus the batch's own creations),
// and a staging failure rejects the batch before anything is journaled
// or applied. Once staged, the group is journaled as one record and
// applied in order; a per-op apply failure (exactly the failures the
// singleton path could hit after its journal append) does not undo
// earlier ops — the first such error is returned after the remaining
// ops ran, and replay reproduces the same partial outcome
// deterministically.
//
// The returned slice has one Ref per op: the minted reference for
// creates, the zero Ref otherwise.
func (r *Runtime) ApplyBatch(ops []wire.BatchOp) ([]heap.Ref, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.stageBatchLocked(ops); err != nil {
		return nil, err
	}
	ops = r.premintBatchLocked(ops)
	if err := r.journalBatch(ops); err != nil {
		return nil, err
	}
	refs, err := r.applyBatchLocked(ops)
	r.checkpointLocked()
	return refs, err
}

// journalBatch durably records a whole batch as one WAL append.
func (r *Runtime) journalBatch(ops []wire.BatchOp) error {
	if r.journal == nil || r.replaying {
		return nil
	}
	rec := &wire.WALRecord{Shard: r.shardIndex(), Batch: &wire.BatchRecord{Ops: ops}}
	if err := r.journal.Append(rec); err != nil {
		return fmt.Errorf("site %v: journal batch (%d ops): %w", r.id, len(ops), err)
	}
	return nil
}

// applyBatchLocked applies a staged (or replayed) batch: coalescing on,
// ops applied in order with deferred arguments resolved from earlier
// results, acks flushed, envelopes shipped. Caller holds r.mu; the
// batch record must already be durable (or replaying).
func (r *Runtime) applyBatchLocked(ops []wire.BatchOp) ([]heap.Ref, error) {
	opened := r.beginCoalesceLocked()
	refs := make([]heap.Ref, len(ops))
	var firstErr error
	for i, bop := range ops {
		op, err := resolveBatchOp(bop, refs)
		if err == nil {
			refs[i], err = r.applyOpLocked(op)
		}
		if err != nil && firstErr == nil {
			if len(ops) > 1 {
				err = fmt.Errorf("batch op %d: %w", i, err)
			}
			firstErr = err
		}
	}
	// Piggyback any acknowledgements the commit window owes (normally
	// none: inbound dispatch flushes its own) onto the same envelopes.
	r.flushAcksLocked()
	if opened {
		r.flushCoalesceLocked()
	}
	return refs, firstErr
}

// premintBatchLocked pre-mints a staged batch on a sharded site: the
// drawn identities, placements and stream sequences ride the journaled
// BatchRecord, so replay reproduces them exactly (see premintLocked).
// Fresh clusters are pinned to the executing shard for multi-op
// batches — a deferred reference to a cross-shard creation would name
// an object the executing shard will never materialise — while
// singleton batches (every Node one-op commit) keep the full placement
// policy. Deferred arguments are resolved against the refs the batch's
// own earlier pre-mints predict, only for the duration of each op's
// pre-mint — the journaled record keeps its deferred form, and
// resolveBatchOp re-derives the same refs at apply (and replay) time.
// The ops slice is copied before mutation: callers own their argument.
// Caller holds r.mu.
func (r *Runtime) premintBatchLocked(ops []wire.BatchOp) []wire.BatchOp {
	if r.sh == nil || r.replaying {
		return ops
	}
	pin := len(ops) > 1
	minted := make([]wire.BatchOp, len(ops))
	copy(minted, ops)
	preds := make([]heap.Ref, len(minted))
	for i := range minted {
		bop := &minted[i]
		op := &bop.Op
		holder, to, target := op.Holder, op.To, op.Target
		if bop.HolderFrom > 0 {
			op.Holder = preds[bop.HolderFrom-1].Obj
		}
		if bop.ToFrom > 0 {
			op.To = preds[bop.ToFrom-1]
		}
		if bop.TargetFrom > 0 {
			op.Target = preds[bop.TargetFrom-1]
		}
		r.premintLocked(op, pin)
		preds[i] = predictedRef(r.id, *op)
		op.Holder, op.To, op.Target = holder, to, target
	}
	return minted
}

// predictedRef computes the Ref a pre-minted create will return when it
// applies — the resolution context for later ops' deferred arguments
// during batch pre-mint. Non-creates (and ops that mint nothing)
// predict the zero Ref, matching resolveBatchOp's treatment of a failed
// deferred source.
func predictedRef(id ids.SiteID, op wire.OpRecord) heap.Ref {
	switch op.Kind {
	case wire.OpNewLocal:
		return heap.Ref{
			Obj:     ids.ObjectID{Site: id, Seq: op.MintObj},
			Cluster: ids.ClusterID{Site: id, Seq: op.MintClu},
		}
	case wire.OpNewLocalIn:
		return heap.Ref{
			Obj:     ids.ObjectID{Site: id, Seq: op.MintObj},
			Cluster: op.Clu,
		}
	case wire.OpNewRemote:
		seq := uint64(id)<<32 | op.MintObj
		return heap.Ref{
			Obj:     ids.ObjectID{Site: op.Site, Seq: seq},
			Cluster: ids.ClusterID{Site: op.Site, Seq: seq},
		}
	}
	return heap.NilRef
}

// resolveBatchOp substitutes deferred arguments with the Refs minted by
// earlier ops of the same batch. Indices were range-checked at staging;
// a deferred source that failed to apply resolves to the zero Ref, so
// the dependent op fails the same way on every replay.
func resolveBatchOp(bop wire.BatchOp, refs []heap.Ref) (wire.OpRecord, error) {
	op := bop.Op
	if bop.HolderFrom > 0 {
		if bop.HolderFrom > len(refs) {
			return op, fmt.Errorf("holder: %w", ErrBatchRef)
		}
		op.Holder = refs[bop.HolderFrom-1].Obj
	}
	if bop.ToFrom > 0 {
		if bop.ToFrom > len(refs) {
			return op, fmt.Errorf("to: %w", ErrBatchRef)
		}
		op.To = refs[bop.ToFrom-1]
	}
	if bop.TargetFrom > 0 {
		if bop.TargetFrom > len(refs) {
			return op, fmt.Errorf("target: %w", ErrBatchRef)
		}
		op.Target = refs[bop.TargetFrom-1]
	}
	return op, nil
}

// --- Staging -------------------------------------------------------------

// stagedView tracks what a batch will have created by the time each op
// applies: which earlier ops mint objects (and on which site), and
// which slot additions the batch itself stages — the deferred-Ref
// resolution context for validating ops against state that does not
// exist until Commit.
type stagedView struct {
	// create[i] is the site of the object op i creates (NoSite when op i
	// creates nothing).
	create []ids.SiteID
	// slots records staged slot additions as (holder, target) argument
	// pairs; concrete arguments use their identity, deferred ones their
	// batch index. Additions only: staged removals are not simulated, so
	// staging is deliberately lenient there and the apply-time check
	// (which sees the true intermediate heap) stays authoritative.
	slots map[stagedSlot]struct{}
}

// stagedArg names an op argument during staging: a concrete object or
// the deferred result of an earlier batch op.
type stagedArg struct {
	obj ids.ObjectID
	idx int // 1-based batch index when deferred; 0 when concrete
}

// stagedSlot is one staged slot addition.
type stagedSlot struct {
	holder stagedArg
	target stagedArg
}

// stageBatchLocked validates a whole batch before anything is journaled
// or applied: structural checks on deferred indices, plus the same
// checks the singleton entry points perform before their journal append
// (holder existence, foreign clusters, self-remote, SendRef holdership)
// evaluated against the heap and the staged view. Caller holds r.mu.
func (r *Runtime) stageBatchLocked(ops []wire.BatchOp) error {
	if len(ops) == 1 && ops[0].HolderFrom == 0 && ops[0].ToFrom == 0 && ops[0].TargetFrom == 0 {
		// The singleton fast path (every Node one-element batch): no
		// deferred arguments means no staged view to build — the
		// concrete pre-journal checks are the whole story. Non-batchable
		// kinds fall through to the full walk, which rejects them.
		switch ops[0].Op.Kind {
		case wire.OpNewLocal, wire.OpNewLocalIn, wire.OpNewRemote,
			wire.OpSendRef, wire.OpAddRef, wire.OpDropRefs, wire.OpClearSlot:
			return r.stageOpLocked(ops[0].Op)
		}
	}
	view := &stagedView{
		create: make([]ids.SiteID, len(ops)),
		slots:  make(map[stagedSlot]struct{}),
	}
	for i, bop := range ops {
		if err := r.stageBatchOpLocked(i, bop, view); err != nil {
			if len(ops) > 1 {
				return fmt.Errorf("batch op %d: %w", i, err)
			}
			return err
		}
	}
	return nil
}

// checkDeferred validates one deferred argument index: it must name an
// earlier op of the batch that creates an object.
func checkDeferred(name string, from, i int, view *stagedView) (stagedArg, error) {
	if from > i || view.create[from-1] == ids.NoSite {
		return stagedArg{}, fmt.Errorf("%s from op %d: %w", name, from-1, ErrBatchRef)
	}
	return stagedArg{idx: from}, nil
}

// stageHolder resolves and validates a holder argument that must name
// an existing local object (the pre-journal check of the create and
// SendRef entry points).
func (r *Runtime) stageHolder(opName string, i int, bop wire.BatchOp, view *stagedView) (stagedArg, error) {
	if bop.HolderFrom > 0 {
		arg, err := checkDeferred("holder", bop.HolderFrom, i, view)
		if err != nil {
			return arg, err
		}
		if view.create[bop.HolderFrom-1] != r.id {
			// The deferred holder is created on another site by this very
			// batch: it can never be a local holder here.
			return arg, fmt.Errorf("site %v: %s (batch op %d): %w", r.id, opName, bop.HolderFrom-1, heap.ErrNoSuchObject)
		}
		return arg, nil
	}
	if r.heap.Object(bop.Op.Holder) == nil {
		return stagedArg{}, fmt.Errorf("site %v: %s %v: %w", r.id, opName, bop.Op.Holder, heap.ErrNoSuchObject)
	}
	return stagedArg{obj: bop.Op.Holder}, nil
}

// stageBatchOpLocked validates one staged op and extends the view.
func (r *Runtime) stageBatchOpLocked(i int, bop wire.BatchOp, view *stagedView) error {
	// Structural validity of every deferred argument first.
	for _, d := range []struct {
		name string
		from int
	}{{"holder", bop.HolderFrom}, {"to", bop.ToFrom}, {"target", bop.TargetFrom}} {
		if d.from > 0 {
			if _, err := checkDeferred(d.name, d.from, i, view); err != nil {
				return err
			}
		}
	}
	switch bop.Op.Kind {
	case wire.OpNewLocal:
		holder, err := r.stageHolder("NewLocal holder", i, bop, view)
		if err != nil {
			return err
		}
		view.create[i] = r.id
		view.slots[stagedSlot{holder: holder, target: stagedArg{idx: i + 1}}] = struct{}{}
	case wire.OpNewLocalIn:
		if bop.Op.Clu.Site != r.id {
			return fmt.Errorf("site %v: NewLocalIn %v: %w", r.id, bop.Op.Clu, heap.ErrForeignCluster)
		}
		holder, err := r.stageHolder("NewLocalIn holder", i, bop, view)
		if err != nil {
			return err
		}
		view.create[i] = r.id
		view.slots[stagedSlot{holder: holder, target: stagedArg{idx: i + 1}}] = struct{}{}
	case wire.OpNewRemote:
		holder, err := r.stageHolder("NewRemote holder", i, bop, view)
		if err != nil {
			return err
		}
		if bop.Op.Site == r.id {
			return fmt.Errorf("site %v: NewRemote: %w", r.id, ErrRemoteSelf)
		}
		if bop.Op.Site == ids.NoSite {
			return fmt.Errorf("site %v: NewRemote: %w", r.id, ErrNoSite)
		}
		view.create[i] = bop.Op.Site
		view.slots[stagedSlot{holder: holder, target: stagedArg{idx: i + 1}}] = struct{}{}
	case wire.OpSendRef:
		holder, err := r.stageHolder("SendRef from", i, bop, view)
		if err != nil {
			return err
		}
		target := stagedArg{obj: bop.Op.Target.Obj, idx: bop.TargetFrom}
		if target.idx > 0 {
			target.obj = ids.ObjectID{}
		}
		if !r.stagedHolds(holder, target, bop.Op.Target, view) {
			return fmt.Errorf("site %v: SendRef: %v of %v: %w", r.id, bop.Op.Target, bop.Op.Holder, ErrNotHolder)
		}
		// A copy to a local destination stages a new slot there.
		to := stagedArg{obj: bop.Op.To.Obj, idx: bop.ToFrom}
		if to.idx > 0 {
			to.obj = ids.ObjectID{}
		}
		view.slots[stagedSlot{holder: to, target: target}] = struct{}{}
	case wire.OpAddRef:
		// Journal-first semantics (like the singleton path): nothing to
		// pre-validate, but the staged slot feeds later holds checks.
		holder := stagedArg{obj: bop.Op.Holder, idx: bop.HolderFrom}
		target := stagedArg{obj: bop.Op.Target.Obj, idx: bop.TargetFrom}
		if holder.idx > 0 {
			holder.obj = ids.ObjectID{}
		}
		if target.idx > 0 {
			target.obj = ids.ObjectID{}
		}
		view.slots[stagedSlot{holder: holder, target: target}] = struct{}{}
	case wire.OpDropRefs, wire.OpClearSlot:
		// Journal-first semantics; staged removals are not simulated.
	default:
		return fmt.Errorf("%v: not a batchable operation: %w", bop.Op.Kind, ErrBatchRef)
	}
	return nil
}

// stagedHolds is the staged-view counterpart of holds: the sender
// either holds the target in the live heap, stages the slot earlier in
// this batch, or sends a reference denoting itself.
func (r *Runtime) stagedHolds(holder, target stagedArg, concrete heap.Ref, view *stagedView) bool {
	if _, ok := view.slots[stagedSlot{holder: holder, target: target}]; ok {
		return true
	}
	if holder.idx > 0 {
		// A batch-created holder can only hold what the batch staged —
		// except its own reference, which is always sendable.
		return target.idx == holder.idx
	}
	if target.idx > 0 {
		return false
	}
	fo := r.heap.Object(holder.obj)
	return fo != nil && r.holds(fo, concrete)
}

// stageOpLocked validates one concrete (singleton) operation before its
// journal append: the rejection-without-journaling semantics of the
// original per-op entry points. Caller holds r.mu.
func (r *Runtime) stageOpLocked(op wire.OpRecord) error {
	switch op.Kind {
	case wire.OpNewLocal:
		if r.heap.Object(op.Holder) == nil {
			return fmt.Errorf("site %v: NewLocal holder %v: %w", r.id, op.Holder, heap.ErrNoSuchObject)
		}
	case wire.OpNewLocalIn:
		if op.Clu.Site != r.id {
			return fmt.Errorf("site %v: NewLocalIn %v: %w", r.id, op.Clu, heap.ErrForeignCluster)
		}
		if r.heap.Object(op.Holder) == nil {
			return fmt.Errorf("site %v: NewLocalIn holder %v: %w", r.id, op.Holder, heap.ErrNoSuchObject)
		}
	case wire.OpNewRemote:
		if r.heap.Object(op.Holder) == nil {
			return fmt.Errorf("site %v: NewRemote holder %v: %w", r.id, op.Holder, heap.ErrNoSuchObject)
		}
		if op.Site == r.id {
			return fmt.Errorf("site %v: NewRemote: %w", r.id, ErrRemoteSelf)
		}
		if op.Site == ids.NoSite && !r.replaying {
			// New validation, gated off during replay: a WAL written
			// before the check could hold a journaled zero-site
			// NewRemote whose application bumped the mint counter —
			// skipping it on replay would shift every later minted
			// identity. (The check in the batch staging walk needs no
			// gate: batch records replay without re-staging.)
			return fmt.Errorf("site %v: NewRemote: %w", r.id, ErrNoSite)
		}
	case wire.OpSendRef:
		fo := r.heap.Object(op.Holder)
		if fo == nil {
			return fmt.Errorf("site %v: SendRef from %v: %w", r.id, op.Holder, heap.ErrNoSuchObject)
		}
		if !r.holds(fo, op.Target) {
			return fmt.Errorf("site %v: SendRef: %v of %v: %w", r.id, op.Target, op.Holder, ErrNotHolder)
		}
	}
	return nil
}

// --- Wire-level coalescing -----------------------------------------------

// emitLocked routes one outbound frame: buffered into the per-peer
// coalescer while a commit or envelope-dispatch window is open, sent
// directly otherwise. On a sharded site a frame addressed to the own
// site is a cross-shard message: it bypasses the coalescer and enters
// the ordered handoff queue of its destination shard. During replay
// self-addressed frames are dropped — the receiving shard's journaled
// delivery records already carry them, and re-routing would apply them
// twice; a crash between the sender's journal append and the receiver's
// is healed like any lost frame (outbox re-send, refresh). Caller holds
// r.mu.
func (r *Runtime) emitLocked(to ids.SiteID, p netsim.Payload) {
	if r.sh != nil && to == r.id {
		if !r.replaying {
			r.sh.route(p)
		}
		return
	}
	if r.coalescing {
		if r.coalesce == nil {
			r.coalesce = make(map[ids.SiteID][]netsim.Payload)
		}
		r.coalesce[to] = append(r.coalesce[to], p)
		return
	}
	r.net.Send(r.id, to, p)
}

// beginCoalesceLocked opens a coalescing window if none is open and
// reports whether this call opened it (the opener flushes). Caller
// holds r.mu.
func (r *Runtime) beginCoalesceLocked() bool {
	if r.coalescing {
		return false
	}
	r.coalescing = true
	return true
}

// flushCoalesceLocked closes the coalescing window and ships the
// buffered frames: one wire.Envelope per destination (chunked at
// Options.MaxBatchFrames), a single frame sent bare — so a one-frame
// "batch" is wire-identical to the singleton path. Destinations flush
// in site order for deterministic schedules under the simulator.
// Caller holds r.mu.
func (r *Runtime) flushCoalesceLocked() {
	buf := r.coalesce
	r.coalescing = false
	r.coalesce = nil
	if len(buf) == 0 {
		return
	}
	peers := make([]ids.SiteID, 0, len(buf))
	for to := range buf {
		peers = append(peers, to)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	max := r.opts.MaxBatchFrames
	if max <= 0 {
		max = DefaultMaxBatchFrames
	}
	for _, to := range peers {
		frames := buf[to]
		for len(frames) > 0 {
			n := len(frames)
			if n > max {
				n = max
			}
			if n == 1 {
				r.net.Send(r.id, to, frames[0])
			} else {
				r.net.Send(r.id, to, wire.Envelope{Frames: frames[:n:n]})
			}
			frames = frames[n:]
		}
	}
}
