package vclock

import (
	"strings"

	"causalgc/internal/ids"
)

// Log is the two-dimensional log DV_i of §3.3–§3.4, with the roles the
// paper's rows play separated so that every stamp is totally ordered
// within its edge (see DESIGN.md §2):
//
//   - The own vector holds authoritative per-edge stamps for the owner's
//     incoming edges: column q is the latest creation (live) or
//     destruction (Ē) stamp of edge q→owner, in q's clock space. The own
//     HintSet holds pending introduction hints for edges the owner has
//     heard of third-hand (§3.4 bundles and gossip) whose sources have not
//     yet spoken.
//   - VRows hold copies of other processes' own vectors (and their hint
//     columns), received from their propagations directly or relayed.
//     A row is Confirmed once received; only confirmed rows certify the
//     absence of root paths.
//   - OBRows are the §3.4 on-behalf entries the owner keeps for a remote
//     process X it references or brokered references to: the owner's own
//     authoritative stamp for its edge owner→X (Auth, column owner), the
//     forwarding hints it created (Hints: dest → forwarding seq,
//     introducer = owner), and the introductions it has processed for its
//     own edge (Processed: intro → seq), shipped with the destruction
//     bundle so the target can resolve the corresponding hints.
type Log struct {
	owner    ids.ClusterID
	own      Vector
	ownHints *HintSet
	vrows    map[ids.ClusterID]*VRow
	ob       map[ids.ClusterID]*OBRow
}

// VRow is a copy of another process's first-hand state.
type VRow struct {
	Auth      Vector
	HintCols  ids.ClusterSet
	Confirmed bool
}

// OBRow is the on-behalf record kept for one remote process.
type OBRow struct {
	// Auth holds the owner's authoritative stamps, keyed by column; by
	// construction the owner only writes its own column (its edge to the
	// row's process).
	Auth Vector
	// Hints records forwards the owner performed: dest → forwarding seq.
	Hints Vector
	// Processed records introductions the owner consumed for its own
	// edge: intro → seq.
	Processed Vector
}

// NewLog creates an empty log for the given owner.
func NewLog(owner ids.ClusterID) *Log {
	return &Log{
		owner:    owner,
		own:      NewVector(),
		ownHints: NewHintSet(),
		vrows:    make(map[ids.ClusterID]*VRow),
		ob:       make(map[ids.ClusterID]*OBRow),
	}
}

// Owner returns the log's owning process.
func (l *Log) Owner() ids.ClusterID { return l.owner }

// Own returns the owner's authoritative incoming-edge vector.
func (l *Log) Own() Vector { return l.own }

// Hints returns the owner's pending introduction hints.
func (l *Log) Hints() *HintSet { return l.ownHints }

// OB returns the on-behalf row for process p, creating it on first use.
func (l *Log) OB(p ids.ClusterID) *OBRow {
	r, ok := l.ob[p]
	if !ok {
		r = &OBRow{Auth: NewVector(), Hints: NewVector(), Processed: NewVector()}
		l.ob[p] = r
	}
	return r
}

// PeekOB returns the on-behalf row for p, or nil.
func (l *Log) PeekOB(p ids.ClusterID) *OBRow { return l.ob[p] }

// VRow returns the vector row for p, creating an unconfirmed empty row on
// first use.
func (l *Log) VRow(p ids.ClusterID) *VRow {
	r, ok := l.vrows[p]
	if !ok {
		r = &VRow{Auth: NewVector(), HintCols: ids.NewClusterSet()}
		l.vrows[p] = r
	}
	return r
}

// PeekVRow returns the vector row for p, or nil.
func (l *Log) PeekVRow(p ids.ClusterID) *VRow { return l.vrows[p] }

// MergeVRow merges first-hand state of process p into its row: auth
// stamps merge per edge; hint columns replace when the data came directly
// from p (p is the authority on its own pending hints) and union when
// relayed. confirm marks the row confirmed. Reports change.
func (l *Log) MergeVRow(p ids.ClusterID, auth Vector, hintCols []ids.ClusterID, direct, confirm bool) bool {
	r := l.VRow(p)
	changed := r.Auth.MergeAll(auth)
	if direct {
		repl := ids.NewClusterSet(hintCols...)
		if len(repl) != len(r.HintCols) {
			changed = true
		} else {
			for c := range repl {
				if !r.HintCols.Has(c) {
					changed = true
					break
				}
			}
		}
		r.HintCols = repl
	} else {
		for _, c := range hintCols {
			if r.HintCols.Add(c) {
				changed = true
			}
		}
	}
	if confirm && !r.Confirmed {
		r.Confirmed = true
		changed = true
	}
	return changed
}

// Confirmed reports whether p's vector row is confirmed.
func (l *Log) Confirmed(p ids.ClusterID) bool {
	r := l.vrows[p]
	return r != nil && r.Confirmed
}

// Processes returns every process mentioned as a row key, sorted.
func (l *Log) Processes() []ids.ClusterID {
	set := ids.NewClusterSet(l.owner)
	for p := range l.vrows {
		set.Add(p)
	}
	for p := range l.ob {
		set.Add(p)
	}
	return set.Sorted()
}

// liveColsOf collects the live predecessor columns of process q as seen
// from this log: the union of q's row (auth live or hinted) and the
// owner's on-behalf knowledge of edges into q.
func (l *Log) liveColsOf(q ids.ClusterID, visit func(col ids.ClusterID, s Stamp, live bool)) {
	if q == l.owner {
		for col, s := range l.own {
			visit(col, s, s.Live() || l.ownHints.Has(col))
		}
		for _, col := range l.ownHints.Cols() {
			if _, ok := l.own[col]; !ok {
				visit(col, Zero, true)
			}
		}
		return
	}
	seen := map[ids.ClusterID]bool{}
	if r := l.vrows[q]; r != nil {
		for col, s := range r.Auth {
			live := s.Live() || r.HintCols.Has(col)
			seen[col] = true
			visit(col, s, live)
		}
		for col := range r.HintCols {
			if !seen[col] {
				seen[col] = true
				visit(col, Zero, true)
			}
		}
	}
	if ob := l.ob[q]; ob != nil {
		for col, s := range ob.Auth {
			visit(col, s, s.Live())
		}
		for col, s := range ob.Hints {
			// A forwarding hint names the edge col→q the owner brokered.
			visit(col, s, s.Live())
		}
	}
}

// Closure computes the owner's view of its causal ancestry: the paper's
// ComputeV (Fig 6) as an iterative fixpoint over the locally held rows —
// "recursive invocations do not involve any remote invocation" (§3.3).
//
// Expansion starts from the owner's direct predecessors (live or hinted
// columns of the own vector) and follows live per-edge stamps backwards
// through the predecessor vectors held locally. Expansion through Ē or
// zero stamps is cut off, implementing the Λ test ("treated as if no edge
// creation event had ever been sent", §3.2). Actual roots are terminal.
//
// The result records whether any live actual-root column was reached and
// whether every expanded non-root process was backed by a confirmed
// vector row; only a complete closure may certify garbage.
func (l *Log) Closure(selfClock uint64) ClosureResult {
	res := ClosureResult{
		V:        NewVector(),
		Complete: true,
		Expanded: ids.NewClusterSet(),
	}
	res.V.Set(l.owner, At(selfClock))
	res.Expanded.Add(l.owner)
	if l.owner.IsRoot() {
		// The owner itself is an actual root: alive by fiat.
		res.LiveRoot = true
	}

	var work []ids.ClusterID
	expand := func(q ids.ClusterID) {
		if q == l.owner || !res.Expanded.Add(q) {
			return
		}
		if q.IsRoot() {
			res.LiveRoot = true
			return
		}
		if !l.Confirmed(q) {
			res.Complete = false
		}
		work = append(work, q)
	}
	visit := func(col ids.ClusterID, s Stamp, live bool) {
		if col == l.owner {
			return
		}
		res.V.JoinPathEntry(col, s)
		if live {
			expand(col)
		}
	}

	l.liveColsOf(l.owner, visit)
	for len(work) > 0 {
		q := work[len(work)-1]
		work = work[:len(work)-1]
		l.liveColsOf(q, visit)
	}
	return res
}

// ClosureResult is the outcome of Log.Closure.
type ClosureResult struct {
	// V renders the closure as a vector time: per process, the superseding
	// stamp over all paths (JoinPath). Used for the Fig 5 / Fig 8
	// reproductions and diagnostics; decisions use LiveRoot and Complete.
	V Vector
	// LiveRoot reports that a live edge from an actual root was reached:
	// ∃k: ¬Λ(V[k]) ∧ root(k).
	LiveRoot bool
	// Complete is true when every expanded non-root process was backed by
	// a confirmed vector row: the realisation of the paper's "is the
	// actual full vector-time" guard (§3.3).
	Complete bool
	// Expanded lists the processes whose rows were consulted.
	Expanded ids.ClusterSet
}

// Garbage reports the paper's removal test on a closure: the owner is
// garbage when no actual root is reachable backwards over live edges and
// the closure is complete.
func (c ClosureResult) Garbage() bool {
	return c.Complete && !c.LiveRoot
}

// String renders the whole log deterministically.
func (l *Log) String() string { return l.Render(nil) }

// Render renders the log with a fixed column order when order is non-nil
// (Fig 8 style), or with sparse vectors otherwise. Confirmed vector rows
// are marked '*'; on-behalf rows show auth/hint vectors.
func (l *Log) Render(order []ids.ClusterID) string {
	fmtVec := func(v Vector) string {
		if order != nil {
			return v.Render(order)
		}
		return v.String()
	}
	var b strings.Builder
	b.WriteString("DV[" + l.owner.String() + "]! = " + fmtVec(l.own))
	if !l.ownHints.Empty() {
		b.WriteString(" hints " + l.ownHints.String())
	}
	for _, p := range l.Processes() {
		if p == l.owner {
			continue
		}
		if r := l.vrows[p]; r != nil {
			mark := " "
			if r.Confirmed {
				mark = "*"
			}
			b.WriteString("\nDV[" + p.String() + "]" + mark + " = " + fmtVec(r.Auth))
			if len(r.HintCols) > 0 {
				b.WriteString(" hintcols ")
				for i, c := range r.HintCols.Sorted() {
					if i > 0 {
						b.WriteByte(' ')
					}
					b.WriteString(c.String())
				}
			}
		}
		if ob := l.ob[p]; ob != nil {
			b.WriteString("\nob[" + p.String() + "]  = " + fmtVec(ob.Auth))
			if len(ob.Hints) > 0 {
				b.WriteString(" fwd " + fmtVec(ob.Hints))
			}
		}
	}
	return b.String()
}

// Clone returns a deep copy of the log (snapshot/trace tooling only).
func (l *Log) Clone() *Log {
	out := NewLog(l.owner)
	out.own = l.own.Clone()
	out.ownHints = l.ownHints.Clone()
	for p, r := range l.vrows {
		out.vrows[p] = &VRow{Auth: r.Auth.Clone(), HintCols: r.HintCols.Clone(), Confirmed: r.Confirmed}
	}
	for p, r := range l.ob {
		out.ob[p] = &OBRow{Auth: r.Auth.Clone(), Hints: r.Hints.Clone(), Processed: r.Processed.Clone()}
	}
	return out
}
