// Package sim is the whole-system harness: it assembles N sites over the
// deterministic network simulator, drives workloads, runs the message
// schedule to quiescence, and cross-checks the system against the global
// oracle. Tests and benchmarks program against World.
package sim

import (
	"fmt"

	"causalgc/internal/ids"
	"causalgc/internal/netsim"
	"causalgc/internal/oracle"
	"causalgc/internal/site"
)

// DefaultStepBudget bounds one Run: the GGD fixpoint always terminates,
// so hitting the budget indicates a bug (non-monotone propagation).
const DefaultStepBudget = 2_000_000

// DefaultSettleRounds bounds Settle: detection latency is finite once
// the substrate is reliable, so needing more rounds indicates residual
// garbage only a refresh can recover (message loss).
const DefaultSettleRounds = 16

// World is a complete simulated system.
type World struct {
	net   *netsim.Sim
	sites []*site.Runtime
}

// NewWorld builds n sites (IDs 1..n) over a deterministic simulator.
func NewWorld(n int, faults netsim.Faults, opts site.Options) *World {
	w := &World{net: netsim.NewSim(faults)}
	for i := 1; i <= n; i++ {
		w.sites = append(w.sites, site.New(ids.SiteID(i), w.net, opts))
	}
	return w
}

// Site returns the runtime of site id (1-based).
func (w *World) Site(id ids.SiteID) *site.Runtime {
	return w.sites[int(id)-1]
}

// Sites returns all runtimes.
func (w *World) Sites() []*site.Runtime { return w.sites }

// Net exposes the simulator (fault control, stats).
func (w *World) Net() *netsim.Sim { return w.net }

// Step delivers one queued message, if any, and reports whether it did:
// the fine-grained interleaving knob used by randomised workloads.
func (w *World) Step() bool { return w.net.Step() }

// Run delivers queued messages until the network is quiet.
func (w *World) Run() error {
	_, err := w.net.Run(DefaultStepBudget)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// CollectAll runs one local collection on every site, then drains the
// resulting traffic.
func (w *World) CollectAll() error {
	for _, s := range w.sites {
		s.Collect()
	}
	return w.Run()
}

// RefreshAll runs one GGD refresh round on every site, then drains: the
// recovery mechanism for residual garbage after message loss (§5).
func (w *World) RefreshAll() error {
	for _, s := range w.sites {
		s.Refresh()
	}
	return w.Run()
}

// Settle drives the system to a stable state: deliver everything, collect
// everywhere, and repeat until a full round changes nothing. It bounds the
// number of rounds; detection latency is finite once the network is
// reliable.
func (w *World) Settle() error {
	if err := w.Run(); err != nil {
		return err
	}
	for round := 0; round < DefaultSettleRounds; round++ {
		before := w.totalObjects()
		if err := w.CollectAll(); err != nil {
			return err
		}
		if w.totalObjects() == before && w.net.Pending() == 0 {
			return nil
		}
	}
	return nil
}

func (w *World) totalObjects() int {
	n := 0
	for _, s := range w.sites {
		n += s.NumObjects()
	}
	return n
}

// TotalObjects returns the live object count across all sites.
func (w *World) TotalObjects() int { return w.totalObjects() }

// Check runs the global oracle.
func (w *World) Check() oracle.Report {
	return oracle.Check(w.sites...)
}
